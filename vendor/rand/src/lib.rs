//! Vendored, dependency-free stand-in for the `rand` crate (0.8 API
//! surface used by this workspace: `StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen_range` over integer/float ranges, `Rng::gen`, `gen_bool`).
//!
//! The generator is xoshiro256++ seeded via splitmix64 — deterministic,
//! fast, and of ample quality for synthetic data generation and tests.
//! Matching upstream rand's exact value streams is a non-goal.

use std::ops::Range;

/// Low-level source of randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// High-level convenience methods, blanket-implemented for every RngCore.
pub trait Rng: RngCore {
    /// Sample uniformly from a half-open range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: Into<UniformRange<T>>,
        Self: Sized,
    {
        let r = range.into();
        T::sample(self, r.start, r.end, r.inclusive)
    }

    /// Sample a value of a simple type (bool/ints/floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Seedable construction mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }

    fn from_entropy() -> Self {
        // No OS entropy needed for this workspace; derive from the clock.
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        Self::seed_from_u64(nanos)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ — the default deterministic generator.
#[derive(Debug, Clone)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl RngCore for Xoshiro256PlusPlus {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for Xoshiro256PlusPlus {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(chunk);
            s[i] = u64::from_le_bytes(b);
        }
        if s.iter().all(|&x| x == 0) {
            s = [1, 2, 3, 4];
        }
        Self { s }
    }
}

/// `rand::rngs` module: the standard RNG alias.
pub mod rngs {
    pub type StdRng = super::Xoshiro256PlusPlus;
    pub use super::Xoshiro256PlusPlus;
}

pub use rngs::StdRng;

/// A `(start, end)` pair captured from a `Range` / `RangeInclusive`.
pub struct UniformRange<T> {
    pub start: T,
    pub end: T,
    pub inclusive: bool,
}

impl<T> From<Range<T>> for UniformRange<T> {
    fn from(r: Range<T>) -> Self {
        UniformRange { start: r.start, end: r.end, inclusive: false }
    }
}

impl<T: Copy> From<std::ops::RangeInclusive<T>> for UniformRange<T> {
    fn from(r: std::ops::RangeInclusive<T>) -> Self {
        UniformRange { start: *r.start(), end: *r.end(), inclusive: true }
    }
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Sized {
    fn sample<R: RngCore>(rng: &mut R, start: Self, end: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<R: RngCore>(rng: &mut R, start: Self, end: Self, inclusive: bool) -> Self {
                let span = (end as i128 - start as i128) + inclusive as i128;
                assert!(span > 0, "gen_range: empty range");
                // Modulo bias is negligible for the small spans used here.
                let offset = (rng.next_u64() as u128) % span as u128;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    fn sample<R: RngCore>(rng: &mut R, start: Self, end: Self, _inclusive: bool) -> Self {
        assert!(start < end, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        start + unit * (end - start)
    }
}

impl SampleUniform for f32 {
    fn sample<R: RngCore>(rng: &mut R, start: Self, end: Self, inclusive: bool) -> Self {
        f64::sample(rng, start as f64, end as f64, inclusive) as f32
    }
}

/// Types with a "standard" distribution (`rng.gen()`).
pub trait Standard: Sized {
    fn standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for i64 {
    fn standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for u32 {
    fn standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for f64 {
    fn standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-5i64..17);
            assert!((-5..17).contains(&v));
            let u: usize = rng.gen_range(0usize..3);
            assert!(u < 3);
            let f: f64 = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn covers_full_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
