//! Vendored, dependency-free stand-in for the `serde_derive` crate.
//!
//! Derives the vendored `serde::Serialize` / `serde::Deserialize` traits
//! (single JSON-shaped data model, see `vendor/serde`) for plain structs
//! and enums. The input is parsed directly from the `proc_macro` token
//! stream — no `syn`/`quote` — which is sufficient because every derive
//! site in this workspace is a non-generic item without `#[serde(...)]`
//! attributes.
//!
//! Encoding:
//! * named struct        → `{"field": value, ...}`
//! * newtype struct      → transparent (the inner value)
//! * tuple struct (n≥2)  → `[v0, v1, ...]`
//! * unit enum variant   → `"Variant"`
//! * newtype variant     → `{"Variant": value}`
//! * tuple variant (n≥2) → `{"Variant": [v0, ...]}`
//! * struct variant      → `{"Variant": {"field": value, ...}}`
//!
//! Missing object fields deserialize as `null` (so `Option` fields added
//! later read back as `None` from older payloads).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Input {
    name: String,
    kind: Kind,
}

#[derive(Debug)]
enum Kind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: Shape,
}

#[derive(Debug)]
enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Skip `#[...]` attribute groups and `pub` / `pub(...)` visibility at the
/// current position of the iterator.
fn skip_attrs_and_vis(iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                // The bracketed attribute body.
                if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    iter.next();
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    iter.next();
                }
            }
            _ => return,
        }
    }
}

/// Parse named fields out of a brace-delimited field list: returns the field
/// names in declaration order.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut iter = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attrs_and_vis(&mut iter);
        match iter.next() {
            None => return Ok(fields),
            Some(TokenTree::Ident(name)) => {
                fields.push(name.to_string());
                // Expect ':' then the type; skip type tokens to the next
                // top-level comma (tracking angle-bracket depth, because
                // generic argument commas are not inside token groups).
                match iter.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                    other => return Err(format!("expected ':' after field name, got {other:?}")),
                }
                let mut angle_depth = 0i32;
                loop {
                    match iter.peek() {
                        None => break,
                        Some(TokenTree::Punct(p)) => {
                            let c = p.as_char();
                            if c == '<' {
                                angle_depth += 1;
                            } else if c == '>' {
                                angle_depth -= 1;
                            } else if c == ',' && angle_depth == 0 {
                                iter.next();
                                break;
                            }
                            iter.next();
                        }
                        Some(_) => {
                            iter.next();
                        }
                    }
                }
            }
            other => return Err(format!("unexpected token in field list: {other:?}")),
        }
    }
}

/// Count the top-level comma-separated items of a paren-delimited tuple
/// field list (tracking angle-bracket depth).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut iter = stream.into_iter().peekable();
    let mut count = 0usize;
    let mut saw_any = false;
    let mut angle_depth = 0i32;
    while let Some(tt) = iter.next() {
        saw_any = true;
        if let TokenTree::Punct(p) = &tt {
            let c = p.as_char();
            if c == '<' {
                angle_depth += 1;
            } else if c == '>' {
                angle_depth -= 1;
            } else if c == ',' && angle_depth == 0 {
                count += 1;
                // A trailing comma should not add a phantom field.
                if iter.peek().is_none() {
                    return count;
                }
            }
        }
    }
    if saw_any {
        count + 1
    } else {
        0
    }
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut iter = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&mut iter);
        match iter.next() {
            None => return Ok(variants),
            Some(TokenTree::Ident(name)) => {
                let shape = match iter.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let n = count_tuple_fields(g.stream());
                        iter.next();
                        Shape::Tuple(n)
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let fields = parse_named_fields(g.stream())?;
                        iter.next();
                        Shape::Named(fields)
                    }
                    _ => Shape::Unit,
                };
                variants.push(Variant { name: name.to_string(), shape });
                // Skip an optional discriminant (`= expr`) and the comma.
                let mut angle_depth = 0i32;
                loop {
                    match iter.peek() {
                        None => break,
                        Some(TokenTree::Punct(p)) => {
                            let c = p.as_char();
                            if c == '<' {
                                angle_depth += 1;
                            } else if c == '>' {
                                angle_depth -= 1;
                            } else if c == ',' && angle_depth == 0 {
                                iter.next();
                                break;
                            }
                            iter.next();
                        }
                        Some(_) => {
                            iter.next();
                        }
                    }
                }
            }
            other => return Err(format!("unexpected token in enum body: {other:?}")),
        }
    }
}

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let mut iter = input.into_iter().peekable();
    skip_attrs_and_vis(&mut iter);
    let item_kind = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "the vendored serde_derive does not support generic types ({name})"
        ));
    }
    let kind = match item_kind.as_str() {
        "struct" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
            other => return Err(format!("unexpected struct body: {other:?}")),
        },
        "enum" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream())?)
            }
            other => return Err(format!("unexpected enum body: {other:?}")),
        },
        other => return Err(format!("cannot derive for `{other}` items")),
    };
    Ok(Input { name, kind })
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::NamedStruct(fields) => {
            let mut s = String::from(
                "let mut m = ::serde::json::Map::new();\n",
            );
            for f in fields {
                s.push_str(&format!(
                    "m.insert({f:?}.to_string(), ::serde::Serialize::to_json_value(&self.{f}));\n"
                ));
            }
            s.push_str("::serde::json::Value::Object(m)");
            s
        }
        Kind::TupleStruct(1) => {
            "::serde::Serialize::to_json_value(&self.0)".to_string()
        }
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_json_value(&self.{i})"))
                .collect();
            format!("::serde::json::Value::Array(vec![{}])", items.join(", "))
        }
        Kind::UnitStruct => "::serde::json::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::json::Value::String({vn:?}.to_string()),\n"
                    )),
                    Shape::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(x0) => {{\n\
                         let mut m = ::serde::json::Map::new();\n\
                         m.insert({vn:?}.to_string(), ::serde::Serialize::to_json_value(x0));\n\
                         ::serde::json::Value::Object(m)\n}}\n"
                    )),
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_json_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => {{\n\
                             let mut m = ::serde::json::Map::new();\n\
                             m.insert({vn:?}.to_string(), ::serde::json::Value::Array(vec![{}]));\n\
                             ::serde::json::Value::Object(m)\n}}\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let binds = fields.join(", ");
                        let mut inner = String::from(
                            "let mut fm = ::serde::json::Map::new();\n",
                        );
                        for f in fields {
                            inner.push_str(&format!(
                                "fm.insert({f:?}.to_string(), ::serde::Serialize::to_json_value({f}));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => {{\n{inner}\
                             let mut m = ::serde::json::Map::new();\n\
                             m.insert({vn:?}.to_string(), ::serde::json::Value::Object(fm));\n\
                             ::serde::json::Value::Object(m)\n}}\n"
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_json_value(&self) -> ::serde::json::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::NamedStruct(fields) => {
            let mut s = format!(
                "let obj = v.as_object().ok_or_else(|| ::serde::Error::custom(\
                 \"expected object for struct {name}\"))?;\n\
                 Ok({name} {{\n"
            );
            for f in fields {
                s.push_str(&format!(
                    "{f}: ::serde::Deserialize::from_json_value(\
                     obj.get({f:?}).unwrap_or(&::serde::json::Value::Null))\
                     .map_err(|e| e.ctx(\"{name}.{f}\"))?,\n"
                ));
            }
            s.push_str("})");
            s
        }
        Kind::TupleStruct(1) => format!(
            "Ok({name}(::serde::Deserialize::from_json_value(v)\
             .map_err(|e| e.ctx(\"{name}.0\"))?))"
        ),
        Kind::TupleStruct(n) => {
            let mut s = format!(
                "let items = v.as_array().ok_or_else(|| ::serde::Error::custom(\
                 \"expected array for struct {name}\"))?;\n\
                 if items.len() != {n} {{\n\
                 return Err(::serde::Error::custom(\"wrong arity for struct {name}\"));\n}}\n\
                 Ok({name}(\n"
            );
            for i in 0..*n {
                s.push_str(&format!(
                    "::serde::Deserialize::from_json_value(&items[{i}])\
                     .map_err(|e| e.ctx(\"{name}.{i}\"))?,\n"
                ));
            }
            s.push_str("))");
            s
        }
        Kind::UnitStruct => format!("Ok({name})"),
        Kind::Enum(variants) => {
            // Unit variants come in as strings; data variants as
            // single-entry objects keyed by the variant name.
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => {
                        unit_arms.push_str(&format!("{vn:?} => return Ok({name}::{vn}),\n"));
                    }
                    Shape::Tuple(1) => data_arms.push_str(&format!(
                        "{vn:?} => return Ok({name}::{vn}(\
                         ::serde::Deserialize::from_json_value(_payload)\
                         .map_err(|e| e.ctx(\"{name}::{vn}\"))?)),\n"
                    )),
                    Shape::Tuple(n) => {
                        let mut items = String::new();
                        for i in 0..*n {
                            items.push_str(&format!(
                                "::serde::Deserialize::from_json_value(&items[{i}])\
                                 .map_err(|e| e.ctx(\"{name}::{vn}.{i}\"))?,\n"
                            ));
                        }
                        data_arms.push_str(&format!(
                            "{vn:?} => {{\n\
                             let items = _payload.as_array().ok_or_else(|| \
                             ::serde::Error::custom(\"expected array for {name}::{vn}\"))?;\n\
                             if items.len() != {n} {{\n\
                             return Err(::serde::Error::custom(\"wrong arity for {name}::{vn}\"));\n}}\n\
                             return Ok({name}::{vn}({items}));\n}}\n"
                        ));
                    }
                    Shape::Named(fields) => {
                        let mut inner = String::new();
                        for f in fields {
                            inner.push_str(&format!(
                                "{f}: ::serde::Deserialize::from_json_value(\
                                 fobj.get({f:?}).unwrap_or(&::serde::json::Value::Null))\
                                 .map_err(|e| e.ctx(\"{name}::{vn}.{f}\"))?,\n"
                            ));
                        }
                        data_arms.push_str(&format!(
                            "{vn:?} => {{\n\
                             let fobj = _payload.as_object().ok_or_else(|| \
                             ::serde::Error::custom(\"expected object for {name}::{vn}\"))?;\n\
                             return Ok({name}::{vn} {{ {inner} }});\n}}\n"
                        ));
                    }
                }
            }
            format!(
                "match v {{\n\
                 ::serde::json::Value::String(s) => {{\n\
                 match s.as_str() {{\n{unit_arms}\
                 _ => {{}}\n}}\n\
                 Err(::serde::Error::custom(format!(\"unknown variant {{s}} for enum {name}\")))\n\
                 }}\n\
                 ::serde::json::Value::Object(m) if m.len() == 1 => {{\n\
                 let (tag, _payload) = m.iter().next().unwrap();\n\
                 match tag.as_str() {{\n{data_arms}\
                 _ => {{}}\n}}\n\
                 Err(::serde::Error::custom(format!(\"unknown variant {{tag}} for enum {name}\")))\n\
                 }}\n\
                 _ => Err(::serde::Error::custom(\"expected string or object for enum {name}\")),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn from_json_value(v: &::serde::json::Value) \
         -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}\n"
    )
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_input(input) {
        Ok(parsed) => gen_serialize(&parsed).parse().unwrap(),
        Err(e) => compile_error(&format!("derive(Serialize): {e}")),
    }
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_input(input) {
        Ok(parsed) => gen_deserialize(&parsed).parse().unwrap(),
        Err(e) => compile_error(&format!("derive(Deserialize): {e}")),
    }
}
