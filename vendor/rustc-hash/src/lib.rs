//! Vendored, dependency-free stand-in for the `rustc-hash` crate.
//!
//! This workspace builds fully offline; the build image has no registry
//! cache, so the handful of small external crates the workspace uses are
//! vendored with API-compatible minimal implementations. This one provides
//! the classic Fx (Firefox) multiply-and-rotate hasher and the
//! `FxHashMap`/`FxHashSet` aliases the workspace relies on.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Type alias for a `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;
/// Type alias for a `HashSet` using [`FxHasher`].
pub type FxHashSet<V> = HashSet<V, FxBuildHasher>;
/// The `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A speedy, non-cryptographic hasher (the rustc/Firefox Fx hash).
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf) ^ rem.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<String, i32> = FxHashMap::default();
        m.insert("a".into(), 1);
        m.insert("b".into(), 2);
        assert_eq!(m.get("a"), Some(&1));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }

    #[test]
    fn hash_is_deterministic() {
        let h = |x: u64| {
            let mut hasher = FxHasher::default();
            hasher.write_u64(x);
            hasher.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43));
    }
}
