//! Vendored, dependency-free stand-in for the `criterion` crate.
//!
//! Implements the benchmark-definition API surface this workspace uses
//! (`criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`, `Bencher::iter` / `iter_batched`) with a simple but
//! honest wall-clock harness: per benchmark it warms up for the configured
//! warm-up time, then repeatedly times batches until the measurement time
//! elapses, and reports min/mean/median nanoseconds per iteration. There
//! are no statistical regressions reports or HTML output.
//!
//! `--bench` / `--test` harness flags and a name filter argument are
//! accepted so `cargo bench [filter]` and `cargo test --benches` work.

use std::time::{Duration, Instant};

/// Per-benchmark measurement settings.
#[derive(Debug, Clone)]
struct Settings {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            warm_up: Duration::from_millis(500),
            measurement: Duration::from_secs(2),
            sample_size: 10,
        }
    }
}

/// The harness entry point handed to benchmark functions.
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
    settings: Settings,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut test_mode = false;
        // cargo bench passes "--bench"; cargo test --benches passes
        // "--test"; a bare positional argument is a name filter.
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" => {}
                "--test" => test_mode = true,
                s if s.starts_with("--") => {}
                s => filter = Some(s.to_string()),
            }
        }
        Criterion { filter, test_mode, settings: Settings::default() }
    }
}

impl Criterion {
    /// Begin a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            settings: Settings::default(),
        }
    }

    /// Run a standalone benchmark (no group).
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let settings = self.settings.clone();
        self.run_one(&id, settings, f);
        self
    }

    fn run_one<F>(&mut self, id: &str, settings: Settings, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            settings: if self.test_mode {
                Settings {
                    warm_up: Duration::from_millis(1),
                    measurement: Duration::from_millis(1),
                    sample_size: 1,
                }
            } else {
                settings
            },
            samples_ns: Vec::new(),
        };
        f(&mut bencher);
        if self.test_mode {
            println!("test {id} ... ok");
            return;
        }
        let mut s = bencher.samples_ns;
        if s.is_empty() {
            println!("{id:<48} (no samples)");
            return;
        }
        s.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let min = s[0];
        let median = s[s.len() / 2];
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        println!(
            "{id:<48} time: [{} {} {}]",
            format_ns(min),
            format_ns(mean),
            format_ns(median)
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// A group of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    settings: Settings,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.settings.warm_up = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        let settings = self.settings.clone();
        self.criterion.run_one(&id, settings, f);
        self
    }

    pub fn finish(&mut self) {}
}

/// How much setup output to hold per batch in [`Bencher::iter_batched`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Times closures; handed to each benchmark body.
pub struct Bencher {
    settings: Settings,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Time `routine` repeatedly; one sample = a timed batch of calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up, and estimate the per-call cost to size batches.
        let warm_start = Instant::now();
        let mut warm_calls = 0u64;
        while warm_start.elapsed() < self.settings.warm_up || warm_calls == 0 {
            std::hint::black_box(routine());
            warm_calls += 1;
            if warm_calls >= 1_000_000 {
                break;
            }
        }
        let per_call = warm_start.elapsed().as_nanos() as f64 / warm_calls as f64;
        let sample_budget =
            self.settings.measurement.as_nanos() as f64 / self.settings.sample_size as f64;
        let batch = ((sample_budget / per_call.max(1.0)).round() as u64).clamp(1, 1_000_000);

        let deadline = Instant::now() + self.settings.measurement;
        for _ in 0..self.settings.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            self.samples_ns.push(start.elapsed().as_nanos() as f64 / batch as f64);
            if Instant::now() > deadline {
                break;
            }
        }
    }

    /// Time `routine` with fresh input from `setup` each call; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warm-up: at least one call.
        let warm_start = Instant::now();
        let mut warm_calls = 0u64;
        while warm_start.elapsed() < self.settings.warm_up || warm_calls == 0 {
            let input = setup();
            std::hint::black_box(routine(input));
            warm_calls += 1;
            if warm_calls >= 100_000 {
                break;
            }
        }

        let deadline = Instant::now() + self.settings.measurement;
        for _ in 0..self.settings.sample_size.max(1) {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.samples_ns.push(start.elapsed().as_nanos() as f64);
            if Instant::now() > deadline {
                break;
            }
        }
    }
}

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Produce the `main` function running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
