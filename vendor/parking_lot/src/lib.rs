//! Vendored, dependency-free stand-in for the `parking_lot` crate.
//!
//! Thin wrappers over `std::sync` primitives exposing the parking_lot API
//! shape (no lock poisoning: a poisoned std lock is transparently
//! recovered, matching parking_lot's behaviour of never poisoning).

use std::sync;

/// A mutex with the `parking_lot::Mutex` API (non-poisoning `lock`).
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self { inner: sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// A reader-writer lock with the `parking_lot::RwLock` API.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self { inner: sync::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
