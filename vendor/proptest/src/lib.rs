//! Vendored, dependency-free stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace uses: the
//! [`Strategy`] trait with `prop_map`, range / tuple / `Just` / regex-lite
//! string strategies, `prop::collection::vec`, `prop::option::of`,
//! `any::<T>()`, the `proptest!` macro with `#![proptest_config(..)]`, and
//! the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream: failing cases are reported but **not
//! shrunk**, and value streams are deterministic (fixed seed) rather than
//! OS-entropy seeded. Neither matters for the invariant tests here.

use std::marker::PhantomData;
use std::ops::Range;

pub mod test_runner {
    use rand::SeedableRng;

    /// Mirror of `proptest::test_runner::Config`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Upper bound on `prop_assume!` rejections before giving up.
        pub max_global_rejects: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256, max_global_rejects: 65_536 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// A `prop_assert*` failed: the whole test fails.
        Fail(String),
        /// A `prop_assume!` rejected the inputs: try another case.
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Drives value generation for one test function.
    pub struct TestRunner {
        pub(crate) rng: rand::StdRng,
    }

    impl TestRunner {
        pub fn new(_config: &Config) -> Self {
            // Deterministic runs: a fixed seed, overridable via
            // PROPTEST_SEED for exploration.
            let seed = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(0x5eed_cafe_f00d_u64);
            TestRunner { rng: rand::StdRng::seed_from_u64(seed) }
        }
    }
}

use test_runner::TestRunner;

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    type Value;

    fn new_value(&self, runner: &mut TestRunner) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f, reason }
    }

    /// Type-erase the strategy (API-compatibility helper).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, runner: &mut TestRunner) -> O {
        (self.f)(self.inner.new_value(runner))
    }
}

/// Result of [`Strategy::prop_filter`]: re-samples until the predicate
/// accepts (bounded, then panics — good enough without shrinking).
pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn new_value(&self, runner: &mut TestRunner) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.new_value(runner);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected too many values: {}", self.reason)
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn ErasedStrategy<T>>);

trait ErasedStrategy<T> {
    fn erased_new_value(&self, runner: &mut TestRunner) -> T;
}

impl<S: Strategy> ErasedStrategy<S::Value> for S {
    fn erased_new_value(&self, runner: &mut TestRunner) -> S::Value {
        self.new_value(runner)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, runner: &mut TestRunner) -> T {
        self.0.erased_new_value(runner)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------------
// Ranges
// ---------------------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, runner: &mut TestRunner) -> $t {
                use rand::Rng;
                runner.rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize, f32, f64);

// ---------------------------------------------------------------------------
// Tuples (up to arity 6)
// ---------------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
                ($(self.$n.new_value(runner),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

// ---------------------------------------------------------------------------
// Regex-lite string strategies
// ---------------------------------------------------------------------------

/// `&str` acts as a string strategy interpreting a small regex subset:
/// a sequence of atoms (`.`, `[a-z0-9_]` classes, or literal characters),
/// each with an optional `{m,n}` / `{m}` / `*` / `+` / `?` quantifier.
impl Strategy for &'static str {
    type Value = String;

    fn new_value(&self, runner: &mut TestRunner) -> String {
        generate_from_pattern(self, runner)
    }
}

fn generate_from_pattern(pattern: &str, runner: &mut TestRunner) -> String {
    use rand::Rng;
    const PRINTABLE: Range<u32> = 0x20..0x7F;
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // Parse one atom.
        enum Atom {
            Any,
            Class(Vec<(char, char)>),
            Lit(char),
        }
        let atom = match chars[i] {
            '.' => {
                i += 1;
                Atom::Any
            }
            '[' => {
                let mut ranges = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    let lo = chars[i];
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        ranges.push((lo, chars[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((lo, lo));
                        i += 1;
                    }
                }
                i += 1; // ']'
                if ranges.is_empty() {
                    ranges.push(('a', 'z'));
                }
                Atom::Class(ranges)
            }
            '\\' if i + 1 < chars.len() => {
                i += 2;
                Atom::Lit(chars[i - 1])
            }
            c => {
                i += 1;
                Atom::Lit(c)
            }
        };
        // Parse an optional quantifier.
        let (min, max) = if i < chars.len() {
            match chars[i] {
                '{' => {
                    let close = chars[i..].iter().position(|&c| c == '}').map(|p| p + i);
                    if let Some(close) = close {
                        let body: String = chars[i + 1..close].iter().collect();
                        i = close + 1;
                        if let Some((lo, hi)) = body.split_once(',') {
                            (
                                lo.trim().parse().unwrap_or(0),
                                hi.trim().parse().unwrap_or(8),
                            )
                        } else {
                            let n = body.trim().parse().unwrap_or(1);
                            (n, n)
                        }
                    } else {
                        (1, 1)
                    }
                }
                '*' => {
                    i += 1;
                    (0, 8)
                }
                '+' => {
                    i += 1;
                    (1, 8)
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        let count = if min == max {
            min
        } else {
            runner.rng.gen_range(min..max + 1)
        };
        for _ in 0..count {
            let c = match &atom {
                Atom::Any => {
                    char::from_u32(runner.rng.gen_range(PRINTABLE.start..PRINTABLE.end))
                        .unwrap_or('?')
                }
                Atom::Class(ranges) => {
                    let (lo, hi) = ranges[runner.rng.gen_range(0..ranges.len())];
                    char::from_u32(runner.rng.gen_range(lo as u32..hi as u32 + 1)).unwrap_or(lo)
                }
                Atom::Lit(c) => *c,
            };
            out.push(c);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// any / Arbitrary
// ---------------------------------------------------------------------------

/// Types with a canonical strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(runner: &mut TestRunner) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(runner: &mut TestRunner) -> Self {
        use rand::Rng;
        runner.rng.gen::<bool>()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(runner: &mut TestRunner) -> Self {
                use rand::RngCore;
                runner.rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for f64 {
    fn arbitrary(runner: &mut TestRunner) -> Self {
        use rand::Rng;
        runner.rng.gen::<f64>() * 2e6 - 1e6
    }
}

/// Strategy produced by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, runner: &mut TestRunner) -> T {
        T::arbitrary(runner)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

/// Mirror of `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRunner};
    use std::ops::Range;

    /// A size specification for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_excl: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange { min: r.start, max_excl: r.end.max(r.start + 1) }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max_excl: n + 1 }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors of values from `element` with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
            use rand::Rng;
            let len = runner.rng.gen_range(self.size.min..self.size.max_excl);
            (0..len).map(|_| self.element.new_value(runner)).collect()
        }
    }
}

/// Mirror of `proptest::option`.
pub mod option {
    use super::{Strategy, TestRunner};

    /// Strategy for `Option<S::Value>` (≈25% `None`).
    pub struct OptionStrategy<S> {
        inner: S,
    }

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
            use rand::RngCore;
            if runner.rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.inner.new_value(runner))
            }
        }
    }
}

/// Mirror of `proptest::strategy` (trait re-exports).
pub mod strategy {
    pub use super::{BoxedStrategy, Just, Map, Strategy};
}

/// The prelude: everything the `proptest!` tests import.
pub mod prelude {
    pub use crate as prop;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        BoxedStrategy, Just, Strategy,
    };
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Define property tests. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of test functions whose
/// arguments are drawn from strategies via `pattern in strategy` syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __pt_config = $config;
            let mut __pt_runner = $crate::test_runner::TestRunner::new(&__pt_config);
            let mut __pt_passed: u32 = 0;
            let mut __pt_rejected: u32 = 0;
            while __pt_passed < __pt_config.cases {
                $(let $arg = $crate::Strategy::new_value(&($strat), &mut __pt_runner);)+
                let __pt_result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                match __pt_result {
                    Ok(()) => __pt_passed += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        __pt_rejected += 1;
                        if __pt_rejected > __pt_config.max_global_rejects {
                            panic!(
                                "proptest: too many prop_assume! rejections in {} ({} rejects)",
                                stringify!($name),
                                __pt_rejected,
                            );
                        }
                    }
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("proptest case failed in {}: {}", stringify!($name), msg);
                    }
                }
            }
        }
    )*};
}

/// Assert a condition inside a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond),
                file!(),
                line!(),
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {} ({}) at {}:{}",
                stringify!($cond),
                format!($($fmt)+),
                file!(),
                line!(),
            )));
        }
    };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __pt_l = &$left;
        let __pt_r = &$right;
        if !(*__pt_l == *__pt_r) {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `left == right` at {}:{}\n  left: {:?}\n right: {:?}",
                file!(),
                line!(),
                __pt_l,
                __pt_r,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __pt_l = &$left;
        let __pt_r = &$right;
        if !(*__pt_l == *__pt_r) {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `left == right` ({}) at {}:{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                file!(),
                line!(),
                __pt_l,
                __pt_r,
            )));
        }
    }};
}

/// Assert inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __pt_l = &$left;
        let __pt_r = &$right;
        if *__pt_l == *__pt_r {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `left != right` at {}:{}\n  both: {:?}",
                file!(),
                line!(),
                __pt_l,
            )));
        }
    }};
}

/// Reject the current case (it does not count towards `cases`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, .. ProptestConfig::default() })]

        #[test]
        fn ranges_and_tuples(x in 0i64..10, (a, b) in (0usize..3, -2i64..2)) {
            prop_assert!((0..10).contains(&x));
            prop_assert!(a < 3);
            prop_assert!((-2..2).contains(&b), "b = {}", b);
        }

        #[test]
        fn vec_and_option(v in prop::collection::vec((0i64..5, prop::option::of(0i64..4)), 0..6)) {
            prop_assert!(v.len() < 6);
            for (a, o) in &v {
                prop_assert!(*a < 5);
                if let Some(o) = o {
                    prop_assert!(*o < 4);
                }
            }
        }

        #[test]
        fn strings_match_patterns(s in "[a-z]{1,6}", t in ".{0,10}") {
            prop_assert!(!s.is_empty() && s.len() <= 6);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            prop_assert!(t.chars().count() <= 10);
        }

        #[test]
        fn assume_rejects(x in 0i64..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }

        #[test]
        fn map_and_just(y in (0i64..4, Just(7i64)).prop_map(|(a, b)| a + b)) {
            prop_assert!((7..11).contains(&y));
        }
    }
}
